package shard

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"

	_ "repro/internal/core"
	_ "repro/internal/csma"
)

// runOutcome is everything a run pins down: per-flow goodput plus the
// engine-internal counters that would expose any event-sequence drift.
type runOutcome struct {
	mbps    []float64
	packets []uint64
	txs     uint64
	decoded []uint64
	missed  []uint64
}

const (
	testDuration = 300 * sim.Millisecond
	testWarmup   = 50 * sim.Millisecond
)

// runSerial is the reference: the serial medium engine, wired exactly
// as experiments.runFlows wires it.
func runSerial(tb *topo.Testbed, flows []topo.Link, armName string, seed uint64) runOutcome {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	m := tb.Build(sched, rng.Stream(1))
	arm := mac.MustLookup(armName)
	meters := make([]*stats.Meter, len(flows))
	nodes := map[int]mac.Node{}
	mk := func(id int) mac.Node {
		if n, ok := nodes[id]; ok {
			return n
		}
		n := arm.New(id, m, rng.Stream(uint64(1000+id)), mac.Options{Rate: phy.Rate6Mbps})
		nodes[id] = n
		return n
	}
	for i, f := range flows {
		tx, rx := mk(f.Src), mk(f.Dst)
		meters[i] = &stats.Meter{Start: testWarmup, End: testDuration}
		rx.SetMeter(meters[i])
		tx.SetSaturated(f.Dst)
	}
	sched.Run(testDuration)
	out := runOutcome{txs: m.Transmissions}
	for i := range flows {
		out.mbps = append(out.mbps, meters[i].Mbps())
		out.packets = append(out.packets, meters[i].Packets())
	}
	for i := 0; i < m.NodeCount(); i++ {
		st := m.Radio(i).Stats()
		out.decoded = append(out.decoded, st.Decoded)
		out.missed = append(out.missed, st.Missed)
	}
	return out
}

// runSharded is the same experiment through the sharded engine.
func runSharded(tb *topo.Testbed, flows []topo.Link, armName string, seed uint64, shards int) runOutcome {
	rng := sim.NewRNG(seed)
	pairs := make([][2]int, len(flows))
	for i, f := range flows {
		pairs[i] = [2]int{f.Src, f.Dst}
	}
	eng := NewEngine(tb.Params, tb.Model, tb.Pos, rng.Stream(1), Config{Shards: shards, Flows: pairs})
	arm := mac.MustLookup(armName)
	meters := make([]*stats.Meter, len(flows))
	nodes := map[int]mac.Node{}
	mk := func(id int) mac.Node {
		if n, ok := nodes[id]; ok {
			return n
		}
		n := arm.New(id, eng.Network(id), rng.Stream(uint64(1000+id)), mac.Options{Rate: phy.Rate6Mbps})
		nodes[id] = n
		return n
	}
	for i, f := range flows {
		tx, rx := mk(f.Src), mk(f.Dst)
		meters[i] = &stats.Meter{Start: testWarmup, End: testDuration}
		rx.SetMeter(meters[i])
		tx.SetSaturated(f.Dst)
	}
	eng.Run(testDuration)
	out := runOutcome{txs: eng.Transmissions()}
	for i := range flows {
		out.mbps = append(out.mbps, meters[i].Mbps())
		out.packets = append(out.packets, meters[i].Packets())
	}
	for i := 0; i < eng.NodeCount(); i++ {
		st := eng.radios[i].Stats()
		out.decoded = append(out.decoded, st.Decoded)
		out.missed = append(out.missed, st.Missed)
	}
	return out
}

// testFlows samples a few potential-link flows spread across the
// testbed so a multi-shard partition has both intra- and cross-border
// interference.
func testFlows(tb *topo.Testbed, seed uint64, count int) []topo.Link {
	rng := sim.NewRNG(seed)
	pairs := tb.InRangePairs(rng, count)
	var flows []topo.Link
	used := map[int]bool{}
	for _, p := range pairs {
		for _, l := range []topo.Link{p.A, p.B} {
			if used[l.Src] || used[l.Dst] {
				continue
			}
			used[l.Src], used[l.Dst] = true, true
			flows = append(flows, l)
		}
	}
	return flows
}

// TestShardOneBitIdenticalToSerial is the acceptance-criterion pin:
// with one shard the engine IS the serial engine — identical per-flow
// goodput, identical transmission count, identical per-radio decode and
// miss counters, for every registered arm family we ship.
func TestShardOneBitIdenticalToSerial(t *testing.T) {
	tb := topo.NewTestbed(50, 11)
	flows := testFlows(tb, 23, 4)
	if len(flows) < 2 {
		t.Fatalf("only %d flows sampled", len(flows))
	}
	for _, armName := range []string{"csma", "cmap", "rtscts"} {
		t.Run(armName, func(t *testing.T) {
			ref := runSerial(tb, flows, armName, 0xfeed)
			got := runSharded(tb, flows, armName, 0xfeed, 1)
			if got.txs != ref.txs {
				t.Fatalf("transmissions: sharded %d, serial %d", got.txs, ref.txs)
			}
			for i := range ref.mbps {
				if got.mbps[i] != ref.mbps[i] || got.packets[i] != ref.packets[i] {
					t.Fatalf("flow %d: sharded %.9f Mb/s (%d pkts), serial %.9f Mb/s (%d pkts)",
						i, got.mbps[i], got.packets[i], ref.mbps[i], ref.packets[i])
				}
			}
			for i := range ref.decoded {
				if got.decoded[i] != ref.decoded[i] || got.missed[i] != ref.missed[i] {
					t.Fatalf("radio %d: sharded decoded/missed %d/%d, serial %d/%d",
						i, got.decoded[i], got.missed[i], ref.decoded[i], ref.missed[i])
				}
			}
		})
	}
}

// TestShardDeterminism pins run-to-run determinism at fixed shard
// counts: the engine's goroutines synchronize only at barriers, so OS
// scheduling must not be able to change a single counter.
func TestShardDeterminism(t *testing.T) {
	tb := topo.NewTestbed(50, 5)
	flows := testFlows(tb, 31, 4)
	for _, shards := range []int{2, 3, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			a := runSharded(tb, flows, "csma", 0xd5, shards)
			b := runSharded(tb, flows, "csma", 0xd5, shards)
			if a.txs != b.txs {
				t.Fatalf("transmissions differ across runs: %d vs %d", a.txs, b.txs)
			}
			for i := range a.mbps {
				if a.mbps[i] != b.mbps[i] {
					t.Fatalf("flow %d goodput differs across runs: %v vs %v", i, a.mbps[i], b.mbps[i])
				}
			}
			for i := range a.decoded {
				if a.decoded[i] != b.decoded[i] || a.missed[i] != b.missed[i] {
					t.Fatalf("radio %d counters differ across runs", i)
				}
			}
		})
	}
}

// TestShardFigureLevelEquivalence bounds the deviation sharding may
// introduce: per-flow goodput at 2 and 4 shards must stay within 30%
// (or 0.25 Mb/s absolute, whichever is looser) of the serial engine,
// and the aggregate within 15%. The deviation source is the lookahead
// window W shifting cross-border interference phase; W is ~4% of one
// data frame's airtime, so a larger drift means a bug, not physics.
func TestShardFigureLevelEquivalence(t *testing.T) {
	tb := topo.NewTestbed(50, 11)
	flows := testFlows(tb, 23, 4)
	for _, armName := range []string{"csma", "cmap"} {
		ref := runSerial(tb, flows, armName, 0xfeed)
		var refAgg float64
		for _, v := range ref.mbps {
			refAgg += v
		}
		for _, shards := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", armName, shards), func(t *testing.T) {
				got := runSharded(tb, flows, armName, 0xfeed, shards)
				var agg float64
				for i, v := range got.mbps {
					agg += v
					diff := v - ref.mbps[i]
					if diff < 0 {
						diff = -diff
					}
					if diff > 0.30*ref.mbps[i] && diff > 0.25 {
						t.Errorf("flow %d: sharded %.3f Mb/s vs serial %.3f Mb/s (Δ %.3f)",
							i, v, ref.mbps[i], diff)
					}
				}
				aggDiff := agg - refAgg
				if aggDiff < 0 {
					aggDiff = -aggDiff
				}
				if aggDiff > 0.15*refAgg {
					t.Errorf("aggregate: sharded %.3f Mb/s vs serial %.3f Mb/s", agg, refAgg)
				}
			})
		}
	}
}

// TestPartitionCoShardsFlows pins the flow-placement contract: every
// flow's endpoints share a shard, transitive endpoint groups collapse
// into one shard, and non-endpoint nodes keep their strip assignment.
func TestPartitionCoShardsFlows(t *testing.T) {
	tb := topo.NewTestbed(50, 3)
	// A chain 0-49, 49-25 forces three nodes into one group.
	flows := [][2]int{{0, 49}, {49, 25}, {10, 12}}
	assign := Partition(tb.Pos, flows, 4)
	if assign[0] != assign[49] || assign[49] != assign[25] {
		t.Fatalf("chained endpoints split: %d/%d/%d", assign[0], assign[49], assign[25])
	}
	if assign[10] != assign[12] {
		t.Fatalf("flow endpoints split: %d/%d", assign[10], assign[12])
	}
	for i, s := range assign {
		if s < 0 || s >= 4 {
			t.Fatalf("node %d in shard %d outside [0,4)", i, s)
		}
	}
	// Determinism: identical inputs, identical assignment.
	again := Partition(tb.Pos, flows, 4)
	for i := range assign {
		if assign[i] != again[i] {
			t.Fatalf("partition not deterministic at node %d", i)
		}
	}
}

// TestEnginePanicPropagation proves a panic on one shard goroutine
// aborts the whole run and resurfaces in Run with the original message
// — not a deadlock at the barrier, not a silent partial run.
func TestEnginePanicPropagation(t *testing.T) {
	tb := topo.NewTestbed(50, 3)
	rng := sim.NewRNG(1)
	eng := NewEngine(tb.Params, tb.Model, tb.Pos, rng.Stream(1), Config{Shards: 3})
	eng.SchedulerOf(0).After(1*sim.Millisecond, func() {
		panic("boom from a shard event")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not propagate the shard panic")
		}
		if !strings.Contains(fmt.Sprint(r), "boom from a shard event") {
			t.Fatalf("propagated panic lost the original message: %v", r)
		}
	}()
	eng.Run(10 * sim.Millisecond)
}

// TestEngineResumeMidWindow pins Run's resumability: stopping on and
// off window edges and resuming must yield the same outcome as one
// uninterrupted run.
func TestEngineResumeMidWindow(t *testing.T) {
	tb := topo.NewTestbed(50, 5)
	flows := testFlows(tb, 31, 3)

	oneShot := runSharded(tb, flows, "csma", 0x9, 3)

	rng := sim.NewRNG(0x9)
	pairs := make([][2]int, len(flows))
	for i, f := range flows {
		pairs[i] = [2]int{f.Src, f.Dst}
	}
	eng := NewEngine(tb.Params, tb.Model, tb.Pos, rng.Stream(1), Config{Shards: 3})
	_ = pairs // same partition not required here; counters only
	arm := mac.MustLookup("csma")
	meters := make([]*stats.Meter, len(flows))
	for i, f := range flows {
		tx := arm.New(f.Src, eng.Network(f.Src), rng.Stream(uint64(1000+f.Src)), mac.Options{Rate: phy.Rate6Mbps})
		rx := arm.New(f.Dst, eng.Network(f.Dst), rng.Stream(uint64(1000+f.Dst)), mac.Options{Rate: phy.Rate6Mbps})
		meters[i] = &stats.Meter{Start: testWarmup, End: testDuration}
		rx.SetMeter(meters[i])
		tx.SetSaturated(f.Dst)
	}
	// Chopped into uneven pieces: mid-window, exact-edge, mid-window.
	w := eng.Window()
	eng.Run(3*w + w/2)
	eng.Run(10 * w)
	eng.Run(100*w + 13)
	eng.Run(testDuration)
	if got := eng.Transmissions(); got == 0 {
		t.Fatal("no traffic flowed")
	}
	_ = oneShot
	// The chopped engine used an unpartitioned flow set, so compare it
	// against its own uninterrupted twin instead of oneShot.
	rng2 := sim.NewRNG(0x9)
	eng2 := NewEngine(tb.Params, tb.Model, tb.Pos, rng2.Stream(1), Config{Shards: 3})
	meters2 := make([]*stats.Meter, len(flows))
	for i, f := range flows {
		tx := arm.New(f.Src, eng2.Network(f.Src), rng2.Stream(uint64(1000+f.Src)), mac.Options{Rate: phy.Rate6Mbps})
		rx := arm.New(f.Dst, eng2.Network(f.Dst), rng2.Stream(uint64(1000+f.Dst)), mac.Options{Rate: phy.Rate6Mbps})
		meters2[i] = &stats.Meter{Start: testWarmup, End: testDuration}
		rx.SetMeter(meters2[i])
		tx.SetSaturated(f.Dst)
	}
	eng2.Run(testDuration)
	if eng.Transmissions() != eng2.Transmissions() {
		t.Fatalf("chopped run diverged: %d vs %d transmissions", eng.Transmissions(), eng2.Transmissions())
	}
	for i := range meters {
		if meters[i].Mbps() != meters2[i].Mbps() {
			t.Fatalf("flow %d: chopped %.9f Mb/s vs uninterrupted %.9f", i, meters[i].Mbps(), meters2[i].Mbps())
		}
	}
}
