package shard

import (
	"fmt"
	"runtime/debug"
	"sync"

	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/medium"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
)

// Config sizes and shapes a sharded engine.
type Config struct {
	// Shards is the number of spatial partitions, each running its own
	// event loop on its own goroutine. 0 and 1 both mean one shard,
	// which short-circuits to a plain serial run.
	Shards int
	// Lookahead is the synthetic cross-shard signal latency W, which is
	// also the synchronization window width. 0 selects phy.DIFS. See the
	// package comment for why it must exist and what it perturbs.
	Lookahead sim.Time
	// Flows lists (src, dst) endpoint pairs that must land in the same
	// shard: stop-and-wait MAC exchanges cannot afford 2W of added
	// round-trip. Endpoint groups connected through shared nodes merge
	// transitively and take the shard of their lowest-numbered member.
	Flows [][2]int
	// ConstructionWorkers fans the delivery-list build across goroutines
	// (0 means GOMAXPROCS); output is bit-identical at any count.
	ConstructionWorkers int
	// Deliveries optionally supplies precomputed delivery lists — they
	// must come from medium.BuildDeliveries over the same params, model,
	// and positions. A caller that already built the lists (say, to pick
	// flows before the engine exists) then skips paying construction
	// twice. Nil means build internally.
	Deliveries [][]medium.Delivery
}

// Engine is one simulation partitioned across shards. Construct with
// NewEngine, wire MACs through Network, then drive virtual time with
// Run. An Engine is not safe for concurrent use; Run itself owns the
// shard goroutines it spawns.
type Engine struct {
	params phy.Params
	window sim.Time
	shards []*Shard
	assign []int
	radios []*phy.Radio
	// deliveries is the unsplit global delivery-list view, retained so
	// flow pickers can ask who hears whom without rebuilding it.
	deliveries [][]medium.Delivery

	seg   int64    // absolute index of the window Run resumes in
	clock sim.Time // high-water mark of Run

	bar      barrier
	failOnce sync.Once
	failErr  any
}

// NewEngine builds a sharded engine over the given topology. rng must
// be the same stream the serial medium would receive (the experiment
// harness passes root.Stream(1)): each node's radio draws from
// rng.Stream(0x5ad10+i) exactly as medium.New does, so decode
// randomness is identical to the serial engine at every shard count.
func NewEngine(params phy.Params, model radio.Model, positions []geo.Point, rng *sim.RNG, cfg Config) *Engine {
	k := cfg.Shards
	if k < 1 {
		k = 1
	}
	w := cfg.Lookahead
	if w <= 0 {
		w = phy.DIFS
	}
	n := len(positions)
	assign := Partition(positions, cfg.Flows, k)
	deliveries := cfg.Deliveries
	if deliveries == nil {
		deliveries, _ = medium.BuildDeliveries(params, model, positions, cfg.ConstructionWorkers)
	}

	e := &Engine{
		params:     params,
		window:     w,
		assign:     assign,
		radios:     make([]*phy.Radio, n),
		deliveries: deliveries,
	}
	e.bar.n = int32(k)
	e.shards = make([]*Shard, k)
	for s := 0; s < k; s++ {
		sh := &Shard{
			eng:    e,
			idx:    s,
			sched:  sim.NewScheduler(),
			local:  make([][]medium.Delivery, n),
			inFrom: make([][]medium.Delivery, n),
			outTo:  make([][]int32, n),
		}
		for p := 0; p < 2; p++ {
			sh.outbox[p] = make([][]handoff, k)
		}
		e.shards[s] = sh
	}
	// Radios are created in ascending node order with the serial
	// engine's RNG streams; only the owning scheduler differs.
	for i := 0; i < n; i++ {
		sh := e.shards[assign[i]]
		e.radios[i] = phy.NewRadio(i, params, sh.sched, rng.Stream(uint64(0x5ad10+i)), sh)
		sh.nodes = append(sh.nodes, i)
	}
	// Split each node's delivery list into the same-shard prefix walked
	// synchronously and per-foreign-shard lists walked on handoff. Order
	// within every sub-list stays ascending, inherited from the build.
	for i := 0; i < n; i++ {
		home := assign[i]
		src := e.shards[home]
		byShard := make(map[int][]medium.Delivery)
		for _, d := range deliveries[i] {
			ds := assign[d.Dst]
			if ds == home {
				src.local[i] = append(src.local[i], d)
			} else {
				byShard[ds] = append(byShard[ds], d)
			}
		}
		for ds := 0; ds < k; ds++ {
			list, ok := byShard[ds]
			if !ok {
				continue
			}
			src.outTo[i] = append(src.outTo[i], int32(ds))
			e.shards[ds].inFrom[i] = list
		}
	}
	return e
}

// Partition assigns each node to one of k shards: a population-balanced
// spatial strip partition (geo.PartitionStrips), then flow endpoints
// pulled into one shard via union-find — each connected endpoint group
// takes the shard of its lowest-numbered member, so the result is a
// total function of (positions, flows, k).
func Partition(positions []geo.Point, flows [][2]int, k int) []int {
	base := geo.PartitionStrips(positions, k)
	if k <= 1 || len(flows) == 0 {
		return base
	}
	n := len(positions)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, f := range flows {
		a, b := find(f[0]), find(f[1])
		// Attach the larger root under the smaller: every group's root
		// is its lowest-numbered member.
		if a < b {
			parent[b] = a
		} else if b < a {
			parent[a] = b
		}
	}
	out := make([]int, n)
	for i := range out {
		out[i] = base[find(i)]
	}
	return out
}

// NodeCount returns the number of nodes across all shards.
func (e *Engine) NodeCount() int { return len(e.radios) }

// Shards returns the configured shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Window returns the lookahead/synchronization window W.
func (e *Engine) Window() sim.Time { return e.window }

// ShardOf returns the shard index hosting node id.
func (e *Engine) ShardOf(id int) int { return e.assign[id] }

// Network returns the mac.Network surface for node id — the shard that
// hosts it. Every MAC must be constructed against its own node's shard.
func (e *Engine) Network(id int) mac.Network { return e.shards[e.assign[id]] }

// SchedulerOf returns the event loop driving node id, for components
// (traffic sources, meters' observers) that attach alongside its MAC.
func (e *Engine) SchedulerOf(id int) *sim.Scheduler { return e.shards[e.assign[id]].sched }

// Now returns the engine's clock high-water mark: every shard has run
// to at least this virtual time.
func (e *Engine) Now() sim.Time { return e.clock }

// ForEachNeighbor calls fn for every receiver that hears node i above
// the delivery floor, in ascending receiver order — the same contract
// as medium.ForEachNeighbor, over the same lists.
func (e *Engine) ForEachNeighbor(i int, fn func(dst int, gainMW float64)) {
	for _, d := range e.deliveries[i] {
		fn(d.Dst, d.GainMW)
	}
}

// Transmissions sums frames put on the air across all shards.
func (e *Engine) Transmissions() uint64 {
	var t uint64
	for _, sh := range e.shards {
		t += sh.Transmissions
	}
	return t
}

// fail records the first real shard panic and releases every barrier
// spinner so the remaining goroutines unwind promptly.
func (e *Engine) fail(r any) {
	if r != errAborted {
		e.failOnce.Do(func() { e.failErr = r })
	}
	e.bar.quit()
}

// Run advances every shard to the given virtual time, spawning one
// goroutine per shard and joining them before returning. until must not
// move backwards. Repeated calls resume exactly where the last stopped,
// including mid-window. A panic on any shard goroutine aborts the whole
// run and re-panics here with the original value.
func (e *Engine) Run(until sim.Time) {
	if until <= e.clock {
		return
	}
	if len(e.shards) == 1 {
		// One shard is the serial engine: no windows, no barrier, no
		// goroutines — and therefore bit-identical to it.
		e.shards[0].sched.Run(until)
		e.clock = until
		return
	}
	var wg sync.WaitGroup
	for _, sh := range e.shards {
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if r != errAborted {
						r = fmt.Sprintf("shard %d (window %d, t=%v): %v\n%s",
							sh.idx, sh.curWin, sh.sched.Now(), r, debug.Stack())
					}
					e.fail(r)
				}
			}()
			e.runShard(sh, until)
		}(sh)
	}
	wg.Wait()
	if e.failErr != nil {
		panic(e.failErr)
	}
	e.seg = int64(until / e.window)
	e.clock = until
}

// runShard is one shard goroutine's window loop: run to the next window
// edge (or until, whichever is earlier), synchronize, exchange, repeat.
// Every shard computes the identical (edge, stop) sequence, so the
// barriers line up by construction.
func (e *Engine) runShard(sh *Shard, until sim.Time) {
	for k := e.seg; ; k++ {
		sh.curWin = k
		edge := sim.Time(k+1) * e.window
		stop := edge
		if until < stop {
			stop = until
		}
		sh.sched.Run(stop)
		e.bar.await()
		if stop < edge {
			return // mid-window stop; the next Run resumes window k
		}
		// The barrier above proves every peer finished window k, so its
		// parity-k outboxes are complete; and no peer can write parity k
		// again before the *next* barrier, which it cannot reach until
		// this shard finishes draining and runs window k+1.
		sh.drain(k)
		if stop == until {
			return
		}
	}
}
