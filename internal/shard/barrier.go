package shard

import (
	"errors"
	"runtime"
	"sync/atomic"
)

// errAborted is the sentinel a barrier spinner panics with when another
// shard failed; Engine.Run recognises it and re-panics with the real
// failure instead.
var errAborted = errors.New("shard: run aborted by a peer shard's panic")

// barrier is a reusable sense-reversing barrier over atomics. Atomics
// rather than a sync.Cond: the wait is one window (tens of µs of
// simulated time, typically far less wall-clock), so a short spin that
// yields the processor between probes beats parking the goroutine —
// and, unlike a mutex-protected count, it is still correct and visible
// to the race detector. The spin yields every probe, so the barrier
// stays live even at GOMAXPROCS=1.
type barrier struct {
	n     int32
	count atomic.Int32
	gen   atomic.Uint64
	abort atomic.Bool
}

// await blocks until all n parties arrive. The last arrival resets the
// count and advances the generation, releasing the spinners. After an
// abort every call panics with errAborted so shard goroutines unwind.
func (b *barrier) await() {
	if b.abort.Load() {
		panic(errAborted)
	}
	g := b.gen.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.gen.Add(1)
		return
	}
	for b.gen.Load() == g {
		if b.abort.Load() {
			panic(errAborted)
		}
		runtime.Gosched()
	}
	if b.abort.Load() {
		panic(errAborted)
	}
}

// quit aborts the barrier: every current and future await panics with
// errAborted. The generation bump releases anyone mid-spin.
func (b *barrier) quit() {
	b.abort.Store(true)
	b.gen.Add(1)
}
