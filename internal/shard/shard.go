package shard

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/medium"
	"repro/internal/phy"
	"repro/internal/sim"
)

// handoff is one cross-shard transmission notice: enough to reconstruct
// the signal at the receiving shard. The frame travels as marshalled
// bytes so the receiving shard owns an independent deep copy — the
// sender's MAC is free to recycle its frame buffers the moment its own
// transmission ends, W before the remote decode completes.
type handoff struct {
	txID       uint64
	from       int
	rate       phy.Rate
	start, end sim.Time // on-air interval in the SENDER's frame of reference
	payload    []byte
}

// remoteTx is the receiving-shard state of one cross-shard signal: the
// reconstructed transmission plus the walk list, driven by two firings
// of the shard's event handler (start fan-out, then end fan-out).
type remoteTx struct {
	tx      phy.Transmission
	list    []medium.Delivery
	started bool
}

// Shard is one spatial partition: its own scheduler, its nodes' radios,
// and the delivery sub-lists that stay inside it. It implements
// phy.Channel (radios transmit through it), sim.EventHandler (its
// per-frame events dispatch here) and mac.Network (MACs construct
// against it) — to a MAC or a radio it is indistinguishable from the
// serial medium.
type Shard struct {
	eng   *Engine
	idx   int
	sched *sim.Scheduler
	nodes []int // global ids hosted here, ascending

	// local[i] is node i's same-shard delivery list (nil for foreign
	// nodes); inFrom[i] the receivers HERE of foreign node i; outTo[i]
	// the foreign shards hosting receivers of local node i, ascending.
	local  [][]medium.Delivery
	inFrom [][]medium.Delivery
	outTo  [][]int32

	// outbox[p][d] holds the handoffs for shard d produced during
	// windows of parity p. Written only by this shard during its own
	// window, read and truncated only by shard d after the barrier —
	// the window protocol keeps the two phases two barriers apart.
	outbox [2][][]handoff

	curWin int64  // window index currently executing (selects parity)
	txSeq  uint64 // local transmission counter; see TxID assignment

	txFree []*phy.Transmission
	rtFree []*remoteTx

	// Transmissions counts frames put on the air by this shard's nodes.
	Transmissions uint64
}

// Radio returns node id's transceiver. Only nodes hosted by this shard
// may be asked for: a MAC wired against a foreign shard's scheduler
// would break the single-threaded-agenda invariant, so it panics.
func (s *Shard) Radio(id int) *phy.Radio {
	if id < 0 || id >= len(s.eng.assign) || s.eng.assign[id] != s.idx {
		panic(fmt.Sprintf("shard %d: Radio(%d) for a node it does not host", s.idx, id))
	}
	return s.eng.radios[id]
}

// Scheduler returns this shard's event loop.
func (s *Shard) Scheduler() *sim.Scheduler { return s.sched }

// acquireTx borrows a Transmission from the shard-local free list.
func (s *Shard) acquireTx() *phy.Transmission {
	if n := len(s.txFree); n > 0 {
		tx := s.txFree[n-1]
		s.txFree[n-1] = nil
		s.txFree = s.txFree[:n-1]
		return tx
	}
	return new(phy.Transmission)
}

// acquireRT borrows a remoteTx from the shard-local free list.
func (s *Shard) acquireRT() *remoteTx {
	if n := len(s.rtFree); n > 0 {
		rt := s.rtFree[n-1]
		s.rtFree[n-1] = nil
		s.rtFree = s.rtFree[:n-1]
		return rt
	}
	return new(remoteTx)
}

// Transmit implements phy.Channel for this shard's radios: fan out to
// same-shard receivers synchronously (the serial engine's exact event
// shape — one signal-end fan-out plus one tx-done, posted in that
// order), and enqueue one handoff per foreign shard with receivers.
//
// TxID = localSeq·S + shardIndex + 1 interleaves the shards' ID spaces:
// unique network-wide without coordination, monotone per shard (radios
// append to their active lists on the fast path), and exactly the
// serial engine's 1,2,3,... at S=1.
func (s *Shard) Transmit(from *phy.Radio, f frame.Frame, r phy.Rate) sim.Time {
	src := from.ID()
	if src < 0 || src >= len(s.eng.radios) || s.eng.radios[src] != from || s.eng.assign[src] != s.idx {
		panic(fmt.Sprintf("shard %d: transmit from radio %d it does not host", s.idx, src))
	}
	s.txSeq++
	s.Transmissions++
	now := s.sched.Now()
	end := now + phy.Airtime(r, f.WireSize())
	tx := s.acquireTx()
	*tx = phy.Transmission{
		TxID:  (s.txSeq-1)*uint64(len(s.eng.shards)) + uint64(s.idx) + 1,
		From:  src,
		Frame: f,
		Rate:  r,
		Start: now,
		End:   end,
	}
	for _, d := range s.local[src] {
		s.eng.radios[d.Dst].SignalStart(tx, d.GainMW)
	}
	if out := s.outTo[src]; len(out) > 0 {
		payload := frame.Marshal(f)
		p := s.curWin & 1
		for _, ds := range out {
			s.outbox[p][ds] = append(s.outbox[p][ds], handoff{
				txID: tx.TxID, from: src, rate: r, start: now, end: end, payload: payload,
			})
		}
	}
	// Signal-end fan-out first, then the sender's tx-done: at equal
	// deadlines, receivers resolve their decodes before the sender's
	// MAC reacts — the serial medium's exact ordering.
	s.sched.Post(end, s, tx)
	s.sched.Post(end, s, from)
	return end
}

// HandleEvent implements sim.EventHandler. A *phy.Transmission is a
// local signal-end fan-out, a *phy.Radio a tx-done upcall (both exactly
// as in the serial medium), and a *remoteTx a cross-shard signal edge.
func (s *Shard) HandleEvent(arg any) {
	switch v := arg.(type) {
	case *phy.Transmission:
		for _, d := range s.local[v.From] {
			s.eng.radios[d.Dst].SignalEnd(v)
		}
		v.Frame = nil // do not retain the MAC's frame past the air interval
		s.txFree = append(s.txFree, v)
	case *phy.Radio:
		v.TxDone()
	case *remoteTx:
		s.handleRemote(v)
	default:
		panic(fmt.Sprintf("shard %d: unexpected event arg %T", s.idx, arg))
	}
}

// handleRemote drives a cross-shard signal through its two edges. The
// first firing (at the shifted start) walks SignalStart over the
// receivers here and schedules the second (at the shifted end), which
// walks SignalEnd and recycles. Walk order is ascending receiver order,
// matching the local fan-out discipline.
func (s *Shard) handleRemote(rt *remoteTx) {
	if !rt.started {
		rt.started = true
		for _, d := range rt.list {
			s.eng.radios[d.Dst].SignalStart(&rt.tx, d.GainMW)
		}
		s.sched.Post(rt.tx.End, s, rt)
		return
	}
	for _, d := range rt.list {
		s.eng.radios[d.Dst].SignalEnd(&rt.tx)
	}
	rt.tx.Frame = nil
	rt.list = nil
	s.rtFree = append(s.rtFree, rt)
}

// drain imports every peer's parity-(k mod 2) outbox for this shard:
// unmarshal each handoff and post its start edge at t+W. Peers are
// visited in ascending shard order and handoffs in append order, so the
// resulting event sequence is a pure function of the shards' (already
// deterministic) window-k executions. Arrival times never precede this
// shard's clock: t > (k-1)·W implies t+W > k·W, which is exactly where
// the clock stands after running to the window edge.
func (s *Shard) drain(k int64) {
	p := k & 1
	w := s.eng.window
	for _, src := range s.eng.shards {
		if src == s {
			continue
		}
		box := src.outbox[p][s.idx]
		for i := range box {
			h := &box[i]
			f, err := frame.Unmarshal(h.payload)
			if err != nil {
				panic(fmt.Sprintf("shard %d: corrupt handoff from shard %d: %v", s.idx, src.idx, err))
			}
			rt := s.acquireRT()
			// Shift the interval into the receiver's frame of reference:
			// same duration, so airtime and SINR integration are exact.
			rt.tx = phy.Transmission{
				TxID: h.txID, From: h.from, Frame: f, Rate: h.rate,
				Start: h.start + w, End: h.end + w,
			}
			rt.list = s.inFrom[h.from]
			rt.started = false
			s.sched.Post(rt.tx.Start, s, rt)
			box[i] = handoff{} // release the payload reference
		}
		src.outbox[p][s.idx] = box[:0]
	}
}
